#include "runner.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "crit/report.hh"
#include "exec/scheduler.hh"
#include "guard/fault.hh"
#include "sim/gpu.hh"
#include "sim/machine.hh"
#include "trace/chrome_writer.hh"
#include "trace/export.hh"
#include "trace/json.hh"
#include "trace/trace.hh"
#include "util/logging.hh"
#include "workloads/sim_context.hh"
#include "workloads/workload.hh"

namespace gcl::bench
{

namespace
{

/** Bump when any workload's dataset or kernel changes shape. */
constexpr unsigned kDatasetVersion = 5;

/**
 * Cache entry format version, written into every entry's header line and
 * required to match on load. Bump whenever the header or body layout
 * changes so stale entries become clean misses instead of parse errors.
 *   v2: header gained this schema field ("gclbench <schema> <verified>").
 *   v3: the deterministic-tick write protocol (global stores/atomics
 *       committed at end of cycle, at every sim_threads count) shifted
 *       functional timing, so v2 stats are stale even though the config
 *       fingerprint did not change.
 *   v4: the machine-description frontend changed what the fingerprint
 *       covers (machine name, per-opcode-class timing, DRAM row model),
 *       so v3 keys can alias configs the old hash never distinguished.
 */
constexpr unsigned kCacheSchemaVersion = 4;

std::filesystem::path
cacheDir()
{
    if (const char *env = std::getenv("GCL_BENCH_CACHE"))
        return env;
    return "bench_results";
}

Options g_options;

/** Parsed --fault-plan / GCL_FAULT_PLAN (validated in initBench). */
guard::FaultPlan g_faultPlan;

/** The machine resolved by initBench (compiled defaults when unset). */
sim::GpuConfig g_machineConfig;

/** Failed runs seen by this process, for finishBench()'s summary. */
std::vector<std::pair<std::string, SimFailure>> g_failures;

/**
 * Trace/export state living for the whole process (all runApp calls).
 * Touched only from the main thread: parallel jobs write into private
 * per-run fragments that the main thread merges in canonical order.
 */
struct ExportState
{
    std::ofstream traceStream;
    std::unique_ptr<trace::ChromeTraceWriter> writer;
    int nextPid = 1;

    struct Record
    {
        std::string name;
        std::string category;
        std::string machine;
        bool verified = false;
        uint64_t fingerprint = 0;
        StatsSet stats;
        SimFailure failure;
    };
    std::vector<Record> records;
};

ExportState *g_export = nullptr;

bool
tracing()
{
    return g_export && g_export->writer;
}

/**
 * Disjoint per-run trace-id range. Chrome async slices pair by (cat, id)
 * across the whole file, so every run (= every pid) gets 2^40 ids of its
 * own; one run emits far fewer.
 */
uint64_t
traceIdBase(int pid)
{
    return static_cast<uint64_t>(pid) << 40;
}

void
writeStatsJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        gcl_warn("cannot write stats JSON to '", path, "'");
        return;
    }
    out << "{\n\"apps\": [";
    bool first = true;
    for (const auto &rec : g_export->records) {
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016" PRIx64, rec.fingerprint);
        out << (first ? "\n" : ",\n") << "{\"name\": "
            << trace::jsonQuote(rec.name) << ", \"category\": "
            << trace::jsonQuote(rec.category) << ", \"machine\": "
            << trace::jsonQuote(rec.machine) << ", \"verified\": "
            << (rec.verified ? "true" : "false")
            << ", \"fingerprint\": \"" << fp << "\"";
        if (rec.failure.failed) {
            out << ", \"failure\": {\"kind\": "
                << trace::jsonQuote(rec.failure.kind)
                << ", \"component\": "
                << trace::jsonQuote(rec.failure.component)
                << ", \"cycle\": " << rec.failure.cycle
                << ", \"message\": "
                << trace::jsonQuote(rec.failure.message);
            if (!rec.failure.detail.empty())
                out << ", \"detail\": "
                    << trace::jsonQuote(rec.failure.detail);
            out << "}";
        }
        out << ", \"stats\": ";
        trace::exportStatsJson(rec.stats, out);
        out << "}";
        first = false;
    }
    out << "\n]\n}\n";
}

void
writeStatsCsv(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        gcl_warn("cannot write stats CSV to '", path, "'");
        return;
    }
    out << "app,kind,key,bucket,value\n";
    for (const auto &rec : g_export->records) {
        // App names are identifiers today, but failure kinds/components
        // are free-form-ish strings; RFC 4180 quoting keeps the table
        // parseable no matter what lands in them.
        if (rec.failure.failed)
            out << trace::csvField(rec.name) << ",failure,"
                << trace::csvField(rec.failure.kind) << ','
                << trace::csvField(rec.failure.component) << ','
                << rec.failure.cycle << '\n';
        std::ostringstream rows;
        trace::exportStatsCsv(rec.stats, rows);
        std::istringstream lines(rows.str());
        std::string line;
        std::getline(lines, line); // per-set header, replaced above
        while (std::getline(lines, line))
            out << trace::csvField(rec.name) << ',' << line << '\n';
    }
}

/**
 * Write the per-app crit reports to --crit-out, plus collapsed-stack lines
 * (one weighted stall path per line, flamegraph.pl compatible) to
 * "<crit-out>.collapsed". Apps whose runs carried no crit section (e.g. a
 * failed run) are skipped silently — the stats JSON still records them.
 */
void
writeCritReport(const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        gcl_warn("cannot write crit report to '", path, "'");
        return;
    }
    std::ofstream collapsed(path + ".collapsed");
    if (!collapsed)
        gcl_warn("cannot write collapsed stacks to '", path,
                 ".collapsed'");
    for (const auto &rec : g_export->records) {
        if (!rec.stats.has("crit.issue_width"))
            continue;
        crit::renderText(out, rec.name, rec.stats, g_options.critTopN);
        if (collapsed)
            crit::appendCollapsed(collapsed, rec.name, rec.stats);
    }
}

/** atexit hook: close the trace array, write the stats artifacts. */
void
finishExports()
{
    if (!g_export)
        return;
    if (g_export->writer) {
        g_export->writer->close();
        std::fprintf(stderr, "[bench] trace: %" PRIu64
                     " events -> %s\n",
                     g_export->writer->eventsWritten(),
                     g_options.traceOut.c_str());
    }
    if (!g_options.statsJson.empty())
        writeStatsJson(g_options.statsJson);
    if (!g_options.statsCsv.empty())
        writeStatsCsv(g_options.statsCsv);
    if (!g_options.critOut.empty())
        writeCritReport(g_options.critOut);
}

bool
cacheDisabled()
{
    if (g_options.fresh)
        return true;
    const char *env = std::getenv("GCL_BENCH_FRESH");
    return env && env[0] == '1';
}

std::filesystem::path
cachePath(const std::string &name, const sim::GpuConfig &config)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s.v%u.%016llx.stats", name.c_str(),
                  kDatasetVersion,
                  static_cast<unsigned long long>(config.fingerprint()));
    return cacheDir() / buf;
}

/**
 * Load one cache entry. Any malformed or truncated file — e.g. left by a
 * pre-atomic-write bench that was killed mid-store — is simply a miss;
 * the run is re-simulated and the entry rewritten.
 */
bool
loadCached(const std::filesystem::path &path, AppResult &result)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string header;
    if (!std::getline(in, header))
        return false;
    std::istringstream hs(header);
    std::string tag;
    unsigned schema = 0;
    int verified = 0;
    // Pre-v2 headers ("gclbench <verified>") run out of tokens here and
    // land in the miss path, as intended.
    if (!(hs >> tag >> schema >> verified) || tag != "gclbench" ||
        schema != kCacheSchemaVersion)
        return false;
    std::stringstream body;
    body << in.rdbuf();
    if (!result.stats.deserialize(body.str()))
        return false;
    result.verified = verified != 0;
    return true;
}

/**
 * Store one cache entry atomically: write a uniquely-named temp file in
 * the cache directory, then rename() it over the final path. A killed
 * bench can never leave a truncated entry, and concurrent bench binaries
 * (or sweep jobs) racing on the same key each publish a complete file —
 * last writer wins with identical bytes.
 */
void
storeCached(const std::filesystem::path &path, const AppResult &result)
{
    static std::atomic<unsigned> seq{0};

    // A failed run has no (complete) stats; caching it would poison every
    // later sweep with the failure's residue.
    if (result.failure.failed)
        return;

    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);

    std::filesystem::path tmp = path;
    tmp += ".tmp." + std::to_string(getpid()) + "." +
           std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(tmp);
        if (!out)
            return;
        out << "gclbench " << kCacheSchemaVersion << ' '
            << (result.verified ? 1 : 0) << '\n';
        out << result.stats.serialize();
        out.close();
        if (!out) {
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        gcl_warn("cannot publish cache entry '", path.string(), "': ",
                 ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

/** Remember a finished run for the end-of-process stats artifacts. */
void
recordResult(const AppResult &result, const sim::GpuConfig &config)
{
    if (!g_export ||
        (g_options.statsJson.empty() && g_options.statsCsv.empty() &&
         g_options.critOut.empty()))
        return;
    g_export->records.push_back({result.name, result.category,
                                 config.machineName, result.verified,
                                 config.fingerprint(), result.stats,
                                 result.failure});
}

/** Simulate one app in @p ctx and package the result (no cache access). */
AppResult
simulate(workloads::SimContext &ctx)
{
    AppResult result;
    result.name = ctx.workload().name;
    result.category = workloads::toString(ctx.workload().category);
    ctx.run();
    result.verified = ctx.verified();
    result.stats = ctx.stats();
    result.failure = ctx.failure();
    return result;
}

/** Note a finished run's failure (called on the publishing thread). */
void
noteFailure(const AppResult &result)
{
    if (result.failure.failed)
        g_failures.emplace_back(result.name, result.failure);
}

/**
 * The config one app actually runs under: base + --sim-config overrides +
 * --max-cycles, plus the fault plan — but only for runs the plan targets.
 * A non-targeted sibling keeps the clean fingerprint, so its cache entry
 * and stats are byte-identical to a fault-free sweep.
 */
sim::GpuConfig
appConfig(const std::string &name, const sim::GpuConfig &base)
{
    sim::GpuConfig config = base;
    if (!g_options.simConfig.empty())
        config.applyOverrides(g_options.simConfig);
    if (g_options.maxCycles != 0)
        config.maxCycles = g_options.maxCycles;
    // The profiler changes stats content (crit.* keys), so this happens
    // before the fingerprint is ever taken: crit-on runs get their own
    // cache entries and never alias a crit-off sweep's.
    if (g_options.crit)
        config.crit = true;
    // Tick threads never affect results (and are excluded from the
    // fingerprint), so applying them after the overrides cannot split the
    // cache; an explicit --sim-config sim_threads=N still wins when the
    // flag/env is absent.
    if (g_options.simThreads >= 0)
        config.simThreads = static_cast<unsigned>(g_options.simThreads);
    if (!g_options.faultPlan.empty() && g_faultPlan.appliesTo(name))
        config.faultPlan = g_options.faultPlan;
    return config;
}

} // namespace

const Options &
options()
{
    return g_options;
}

unsigned
effectiveJobs()
{
    return exec::resolveJobs(g_options.jobs, "GCL_BENCH_JOBS", 1);
}

unsigned
effectiveSimThreads()
{
    // Auto (0) was resolved to a concrete count in initBench().
    return g_options.simThreads < 0
               ? 1
               : static_cast<unsigned>(g_options.simThreads);
}

void
initBench(int argc, char **argv)
{
    auto value = [](const char *arg, const char *flag) -> const char * {
        const size_t n = std::strlen(flag);
        if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (const char *v = value(arg, "--trace-out")) {
            g_options.traceOut = v;
        } else if (const char *v = value(arg, "--timeline-interval")) {
            g_options.timelineInterval = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value(arg, "--stats-json")) {
            g_options.statsJson = v;
        } else if (const char *v = value(arg, "--stats-csv")) {
            g_options.statsCsv = v;
        } else if (const char *v = value(arg, "--apps")) {
            std::istringstream list(v);
            std::string app;
            while (std::getline(list, app, ','))
                if (!app.empty())
                    g_options.apps.push_back(app);
            // A typo must not silently shrink the suite: unknown names
            // are a usage error, reported with the valid vocabulary.
            for (const auto &name : g_options.apps)
                if (workloads::findByName(name) == nullptr)
                    gcl_fatal("--apps: unknown application '", name,
                              "' (known: ", workloads::knownNames(), ")");
        } else if (const char *v = value(arg, "--jobs")) {
            char *end = nullptr;
            const unsigned long n = std::strtoul(v, &end, 10);
            if (end == v || *end != '\0')
                gcl_fatal("--jobs=", v, " is not a job count");
            g_options.jobs = n == 0 ? exec::hardwareThreads()
                                    : static_cast<unsigned>(n);
        } else if (const char *v = value(arg, "--sim-threads")) {
            char *end = nullptr;
            const unsigned long n = std::strtoul(v, &end, 10);
            if (end == v || *end != '\0')
                gcl_fatal("--sim-threads=", v, " is not a thread count");
            g_options.simThreads = static_cast<int>(n);
        } else if (const char *v = value(arg, "--max-cycles")) {
            char *end = nullptr;
            const unsigned long long n = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0' || n == 0)
                gcl_fatal("--max-cycles=", v, " is not a cycle count");
            g_options.maxCycles = n;
        } else if (const char *v = value(arg, "--machine")) {
            g_options.machine = v;
        } else if (const char *v = value(arg, "--sim-config")) {
            g_options.simConfig = v;
        } else if (const char *v = value(arg, "--fault-plan")) {
            g_options.faultPlan = v;
        } else if (std::strcmp(arg, "--crit") == 0) {
            g_options.crit = true;
        } else if (const char *v = value(arg, "--crit-top-n")) {
            char *end = nullptr;
            const unsigned long n = std::strtoul(v, &end, 10);
            if (end == v || *end != '\0' || n == 0)
                gcl_fatal("--crit-top-n=", v, " is not a row count");
            g_options.critTopN = static_cast<unsigned>(n);
        } else if (const char *v = value(arg, "--crit-out")) {
            g_options.critOut = v;
            g_options.crit = true;
        } else if (std::strcmp(arg, "--fresh") == 0) {
            g_options.fresh = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf(
                "usage: %s [options]\n"
                "  --trace-out=FILE         Chrome trace-event JSON "
                "(load in Perfetto)\n"
                "  --timeline-interval=N    sample occupancy counters "
                "every N cycles\n"
                "  --stats-json=FILE        finalized stats of every run, "
                "as JSON\n"
                "  --stats-csv=FILE         same, flat CSV "
                "(app,kind,key,bucket,value)\n"
                "  --apps=a,b,c             restrict the suite to these "
                "applications\n"
                "  --fresh                  ignore the on-disk run cache\n"
                "  --jobs=N                 simulate up to N apps "
                "concurrently (0 = #cores;\n"
                "                           default GCL_BENCH_JOBS, "
                "else 1)\n"
                "  --sim-threads=N          tick threads inside each "
                "simulation; results\n"
                "                           are bit-identical at any N "
                "(0 = #cores minus\n"
                "                           sweep jobs, min 1; default "
                "GCL_SIM_THREADS,\n"
                "                           else 1)\n"
                "  --machine=NAME|PATH      machine description: a "
                "configs/ zoo name\n"
                "                           (e.g. c2050, hbm-sectored) or "
                "a .config file\n"
                "                           path (= GCL_MACHINE; default: "
                "compiled-in\n"
                "                           C2050)\n"
                "  --max-cycles=N           per-run cycle budget; an "
                "exceeding run is\n"
                "                           reported as a 'timeout' "
                "failure record\n"
                "                           (= GCL_MAX_CYCLES)\n"
                "  --sim-config=K=V,...     override simulator config "
                "fields by name\n"
                "                           (= GCL_SIM_CONFIG)\n"
                "  --fault-plan=SPEC        deterministic fault injection, "
                "e.g.\n"
                "                           'app=bpr;stop@20000' "
                "(= GCL_FAULT_PLAN;\n"
                "                           grammar in src/guard/fault.hh)"
                "\n"
                "  --crit                   criticality profiler: per-PC "
                "stall\n"
                "                           attribution + latency breakdown "
                "in the stats\n"
                "  --crit-top-n=N           critical-load table rows "
                "(default 10)\n"
                "  --crit-out=FILE          per-app crit report (implies "
                "--crit);\n"
                "                           FILE.collapsed gets "
                "flamegraph stacks\n",
                argv[0]);
            std::exit(0);
        } else {
            gcl_fatal("unknown argument '", arg, "' (try --help)");
        }
    }

    // Environment fallbacks (flags win).
    if (g_options.maxCycles == 0) {
        if (const char *env = std::getenv("GCL_MAX_CYCLES")) {
            char *end = nullptr;
            const unsigned long long n = std::strtoull(env, &end, 10);
            if (end == env || *end != '\0' || n == 0)
                gcl_fatal("GCL_MAX_CYCLES=", env,
                          " is not a cycle count");
            g_options.maxCycles = n;
        }
    }
    if (g_options.simThreads < 0) {
        if (const char *env = std::getenv("GCL_SIM_THREADS")) {
            char *end = nullptr;
            const unsigned long n = std::strtoul(env, &end, 10);
            if (end == env || *end != '\0')
                gcl_fatal("GCL_SIM_THREADS=", env,
                          " is not a thread count");
            g_options.simThreads = static_cast<int>(n);
        }
    }
    if (g_options.machine.empty())
        if (const char *env = std::getenv("GCL_MACHINE"))
            g_options.machine = env;
    if (g_options.simConfig.empty())
        if (const char *env = std::getenv("GCL_SIM_CONFIG"))
            g_options.simConfig = env;
    if (g_options.faultPlan.empty())
        if (const char *env = std::getenv("GCL_FAULT_PLAN"))
            g_options.faultPlan = env;

    // Resolve --sim-threads=0 ("auto") once, here, so every run and the
    // header report the same concrete count: the hardware threads left
    // over after the sweep's own jobs, never below one tick thread.
    if (g_options.simThreads == 0) {
        const unsigned hw = exec::hardwareThreads();
        const unsigned jobs = effectiveJobs();
        if (hw > jobs) {
            g_options.simThreads = static_cast<int>(hw - jobs);
        } else {
            gcl_warn("--sim-threads=0: ", jobs, " sweep job(s) already ",
                     "cover the ", hw, " hardware thread(s); clamping to ",
                     "1 tick thread per simulation");
            g_options.simThreads = 1;
        }
    }

    // Resolve the machine description once, eagerly: a typo'd name or
    // unparseable file is a usage error at startup. The source *path*
    // goes to stderr only — stdout artifacts carry the machine *name*, so
    // `--machine=configs/c2050.config` stays byte-identical to the
    // compiled-in defaults.
    if (!g_options.machine.empty()) {
        try {
            const std::string path =
                sim::MachineRegistry::resolvePath(g_options.machine);
            g_machineConfig = sim::loadMachineFile(path);
            std::fprintf(stderr, "[bench] machine: %s (%s)\n",
                         g_machineConfig.machineName.c_str(),
                         path.c_str());
        } catch (const SimError &error) {
            gcl_fatal("--machine: ", error.message());
        }
    }

    // Validate eagerly: a bad override or fault spec is a usage error at
    // startup, not a per-run failure half an hour into a sweep.
    if (!g_options.simConfig.empty()) {
        try {
            sim::GpuConfig{}.applyOverrides(g_options.simConfig);
        } catch (const SimError &error) {
            gcl_fatal("--sim-config: ", error.message());
        }
    }
    if (!g_options.faultPlan.empty()) {
        try {
            g_faultPlan = guard::FaultPlan::parse(g_options.faultPlan);
        } catch (const SimError &error) {
            gcl_fatal("--fault-plan: ", error.message());
        }
    }

    if (g_options.traceOut.empty() && g_options.statsJson.empty() &&
        g_options.statsCsv.empty() && g_options.critOut.empty())
        return;

    static ExportState state;
    g_export = &state;
    if (!g_options.traceOut.empty()) {
        state.traceStream.open(g_options.traceOut);
        if (!state.traceStream)
            gcl_fatal("cannot open trace output '", g_options.traceOut,
                      "'");
        state.writer =
            std::make_unique<trace::ChromeTraceWriter>(state.traceStream);
        // A trace without the occupancy timeline is half blind; default
        // to a sane sampling period unless the user chose one.
        if (g_options.timelineInterval == 0)
            g_options.timelineInterval = 1000;
    }
    std::atexit(finishExports);
}

sim::GpuConfig
defaultConfig()
{
    return g_machineConfig;
}

AppResult
runApp(const std::string &name, const sim::GpuConfig &config)
{
    const auto &workload = workloads::byName(name);
    const sim::GpuConfig run_config = appConfig(name, config);

    AppResult result;
    result.name = name;
    result.category = workloads::toString(workload.category);

    // A cached stats file has no events in it: tracing forces a fresh
    // simulation (the stats it produces are identical, so re-caching is
    // still valid).
    const auto path = cachePath(name, run_config);
    if (!tracing() && !cacheDisabled() && loadCached(path, result)) {
        recordResult(result, run_config);
        return result;
    }

    workloads::SimContext ctx(workload, run_config);
    if (tracing()) {
        const int pid = g_export->nextPid++;
        g_export->writer->beginProcess(pid, name,
                                       run_config.machineName);
        ctx.enableTrace(g_options.timelineInterval,
                        g_export->writer->drain(), traceIdBase(pid));
    }
    result = simulate(ctx);

    noteFailure(result);
    storeCached(path, result);
    recordResult(result, run_config);
    return result;
}

std::vector<AppResult>
runSuite(const sim::GpuConfig &config)
{
    // Select in Table I order; force the (lazily-built) registry before
    // any worker thread can race on its initialization.
    std::vector<const workloads::Workload *> selected;
    for (const auto &workload : workloads::all()) {
        if (!g_options.apps.empty() &&
            std::find(g_options.apps.begin(), g_options.apps.end(),
                      workload.name) == g_options.apps.end())
            continue;
        selected.push_back(&workload);
    }

    std::vector<sim::GpuConfig> configs;
    configs.reserve(selected.size());
    for (const auto *workload : selected)
        configs.push_back(appConfig(workload->name, config));

    const unsigned jobs = effectiveJobs();
    if (jobs <= 1 || selected.size() <= 1) {
        // Serial path: the historical loop, byte for byte.
        std::vector<AppResult> results;
        results.reserve(selected.size());
        for (const auto *workload : selected) {
            std::fprintf(stderr, "[bench] %s ...\n",
                         workload->name.c_str());
            results.push_back(runApp(workload->name, config));
        }
        return results;
    }

    // Parallel path. Result slots are pre-sized so every job writes only
    // its own element and the output order is canonical regardless of
    // completion order.
    std::vector<AppResult> results(selected.size());

    // 1) Satisfy what we can from the cache (cheap, so done inline).
    std::vector<char> done(selected.size(), 0);
    if (!tracing() && !cacheDisabled()) {
        for (size_t i = 0; i < selected.size(); ++i) {
            AppResult &r = results[i];
            r.name = selected[i]->name;
            r.category = workloads::toString(selected[i]->category);
            done[i] = loadCached(cachePath(r.name, configs[i]), r) ? 1 : 0;
            if (done[i])
                std::fprintf(stderr, "[bench] %s ...\n", r.name.c_str());
        }
    }

    // 2) Schedule the misses. Each job owns a SimContext and (when
    //    tracing) a private sink draining into a private fragment; pids
    //    are assigned here, in canonical order, so the merged trace is
    //    numbered exactly like a serial one.
    struct RunJob
    {
        size_t slot = 0;
        std::unique_ptr<workloads::SimContext> ctx;
        // Heap-allocated: the fragment writer keeps a reference to the
        // stream, which must stay put when RunJobs move around the vector.
        std::unique_ptr<std::ostringstream> fragmentBody;
        std::unique_ptr<trace::ChromeTraceWriter> fragment;
    };
    std::vector<RunJob> pending;
    for (size_t i = 0; i < selected.size(); ++i) {
        if (done[i])
            continue;
        RunJob job;
        job.slot = i;
        job.ctx = std::make_unique<workloads::SimContext>(*selected[i],
                                                          configs[i]);
        if (tracing()) {
            const int pid = g_export->nextPid++;
            job.fragmentBody = std::make_unique<std::ostringstream>();
            job.fragment = std::make_unique<trace::ChromeTraceWriter>(
                *job.fragmentBody, /*fragment=*/true);
            job.fragment->beginProcess(pid, selected[i]->name,
                                       configs[i].machineName);
            job.ctx->enableTrace(g_options.timelineInterval,
                                 job.fragment->drain(), traceIdBase(pid));
        }
        pending.push_back(std::move(job));
    }

    exec::parallelFor(jobs, pending.size(), [&](size_t j) {
        RunJob &job = pending[j];
        std::fprintf(stderr, "[bench] %s ...\n",
                     job.ctx->workload().name.c_str());
        results[job.slot] = simulate(*job.ctx);
    });

    // 3) Publish — cache entries, trace fragments, export records — on
    //    the calling thread, in canonical order.
    for (RunJob &job : pending) {
        if (job.fragment) {
            job.fragment->close();
            g_export->writer->appendFragment(job.fragmentBody->str(),
                                             job.fragment->eventsWritten());
        }
        noteFailure(results[job.slot]);
        storeCached(cachePath(results[job.slot].name, configs[job.slot]),
                    results[job.slot]);
    }
    for (size_t i = 0; i < results.size(); ++i)
        recordResult(results[i], configs[i]);
    return results;
}

void
printHeader(const std::string &title, const sim::GpuConfig &config)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("machine %s, config fingerprint %016llx, cache %s\n",
                config.machineName.c_str(),
                static_cast<unsigned long long>(config.fingerprint()),
                cacheDisabled() ? "disabled" : cacheDir().string().c_str());
    if (!g_options.simConfig.empty())
        std::printf("sim-config overrides: %s\n",
                    g_options.simConfig.c_str());
    if (effectiveSimThreads() != 1)
        std::printf("sim-threads: %u per run (deterministic tick), "
                    "jobs: %u\n",
                    effectiveSimThreads(), effectiveJobs());
    if (!g_options.faultPlan.empty())
        std::printf("fault plan: %s\n", g_options.faultPlan.c_str());
    std::printf("\n");
}

int
finishBench()
{
    if (g_failures.empty())
        return 0;
    std::fprintf(stderr, "[bench] %zu run(s) failed:\n",
                 g_failures.size());
    for (const auto &[name, failure] : g_failures)
        std::fprintf(stderr, "[bench]   %s: [%s] %s@%llu: %s\n",
                     name.c_str(), failure.kind.c_str(),
                     failure.component.c_str(),
                     static_cast<unsigned long long>(failure.cycle),
                     failure.message.c_str());
    return 3;
}

} // namespace gcl::bench
