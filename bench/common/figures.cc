#include "figures.hh"

#include <algorithm>

namespace gcl::bench
{

std::vector<PcSeries>
discoverPcSeries(const StatsSet &stats)
{
    std::vector<PcSeries> out;
    const std::string suffix = ".turn_cnt";
    for (const auto &[key, hist] : stats.hists()) {
        if (key.rfind("pc.", 0) != 0)
            continue;
        if (key.size() < suffix.size() ||
            key.compare(key.size() - suffix.size(), suffix.size(), suffix))
            continue;
        const std::string prefix =
            key.substr(0, key.size() - suffix.size() + 1);  // keep the '.'
        // prefix == "pc.<kernel>#<pc>."
        const size_t hash = prefix.rfind('#');
        if (hash == std::string::npos)
            continue;
        PcSeries series;
        series.prefix = prefix;
        series.kernel = prefix.substr(3, hash - 3);
        series.pc = static_cast<uint32_t>(
            std::stoul(prefix.substr(hash + 1)));
        series.nonDet = stats.get(prefix + "nondet") != 0.0;
        series.totalWarps = hist.totalWeight();
        out.push_back(std::move(series));
    }
    std::sort(out.begin(), out.end(),
              [](const PcSeries &a, const PcSeries &b) {
                  return a.totalWarps > b.totalWarps;
              });
    return out;
}

PcSeries
hottestPc(const StatsSet &stats, bool non_det)
{
    for (const auto &series : discoverPcSeries(stats))
        if (series.nonDet == non_det)
            return series;
    return PcSeries{};
}

} // namespace gcl::bench
