/**
 * @file
 * Small shared helpers for the figure benches: per-class ratio extraction
 * and per-pc histogram discovery.
 */

#ifndef GCL_BENCH_COMMON_FIGURES_HH
#define GCL_BENCH_COMMON_FIGURES_HH

#include <string>
#include <vector>

#include "runner.hh"

namespace gcl::bench
{

/** "x" -> "x.det" or "x.nondet". */
inline std::string
classKey(const char *key, bool non_det)
{
    return std::string(key) + (non_det ? ".nondet" : ".det");
}

/** Per-class ratio of two stat keys; 0 when the class never ran. */
inline double
classRatio(const StatsSet &stats, const char *num, const char *den,
           bool non_det)
{
    return stats.ratio(classKey(num, non_det), classKey(den, non_det));
}

/** One load pc discovered from the per-pc stats. */
struct PcSeries
{
    std::string kernel;
    uint32_t pc = 0;
    bool nonDet = false;
    double totalWarps = 0;   //!< total dynamic executions
    std::string prefix;      //!< "pc.<kernel>#<pc>."
};

/** All load pcs recorded in @p stats, heaviest first. */
std::vector<PcSeries> discoverPcSeries(const StatsSet &stats);

/** The heaviest pc of the given class; nullptr-like (empty prefix) if none. */
PcSeries hottestPc(const StatsSet &stats, bool non_det);

} // namespace gcl::bench

#endif // GCL_BENCH_COMMON_FIGURES_HH
