/**
 * @file
 * Shared experiment runner for the figure/table benches.
 *
 * Every bench binary regenerates its figure from the same 15-application
 * simulation sweep. Since one sweep costs the better part of a minute, the
 * runner memoizes finished runs on disk keyed by (application, dataset
 * version, config fingerprint); `for b in build/bench/*; do $b; done`
 * therefore simulates each configuration once and replays it everywhere
 * else. Set GCL_BENCH_FRESH=1 to ignore the cache, GCL_BENCH_CACHE to move
 * it (default: ./bench_results).
 *
 * Observability (gcl::trace) is wired in behind flags, parsed by
 * initBench():
 *   --machine=NAME|PATH       load the machine description (configs/ zoo
 *                             name or a .config file path; default
 *                             GCL_MACHINE, else the compiled-in C2050)
 *   --trace-out=FILE          stream a Chrome trace-event JSON (Perfetto)
 *   --timeline-interval=N     sample occupancy counters every N cycles
 *   --stats-json=FILE         dump every app's finalized stats as JSON
 *   --stats-csv=FILE          same, as a flat CSV table
 *   --apps=a,b,c              restrict runSuite() to these applications
 *   --fresh                   ignore the on-disk run cache (= GCL_BENCH_FRESH)
 *   --jobs=N                  simulate up to N applications concurrently
 *                             (0 = one per hardware thread; default
 *                             GCL_BENCH_JOBS, else 1)
 *   --sim-threads=N           tick threads *inside* each simulation
 *                             (deterministic; 0 = hardware threads minus
 *                             sweep jobs, clamped >= 1; default
 *                             GCL_SIM_THREADS, else 1)
 *   --crit                    enable the gcl::crit criticality profiler
 *                             (per-PC stall attribution + latency
 *                             decomposition folded into the stats)
 *   --crit-top-n=N            rows in the critical-load table (default 10)
 *   --crit-out=FILE           write the per-app crit report (implies
 *                             --crit); FILE.collapsed additionally gets
 *                             collapsed-stack lines for flamegraph tools
 * Tracing always simulates fresh: a cached stats file has no events.
 *
 * Two parallelism axes compose multiplicatively. --jobs spreads the sweep
 * *across* applications: each run is a thread-confined
 * workloads::SimContext scheduled on a gcl::exec pool, results land in
 * canonical (Table I) order, and per-run trace sinks are merged into one
 * well-formed Chrome trace — so every artifact is bit-identical to a
 * --jobs=1 sweep. --sim-threads additionally parallelizes the cycle loop
 * *within* each simulation (the Gpu's deterministic two-phase tick); it
 * changes wall-clock only, never results, so cache entries, stats, traces
 * and figures are byte-identical at any thread count.
 */

#ifndef GCL_BENCH_COMMON_RUNNER_HH
#define GCL_BENCH_COMMON_RUNNER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "guard/sim_error.hh"
#include "sim/config.hh"
#include "util/stats.hh"

namespace gcl::bench
{

/** One finished application run. */
struct AppResult
{
    std::string name;
    std::string category;    //!< "linear" / "image" / "graph"
    bool verified = false;   //!< CPU reference check passed
    StatsSet stats;          //!< finalized simulator stats
    SimFailure failure;      //!< structured failure record (failed=false
                             //!< on a clean run)
};

/** Observability options shared by every bench binary. */
struct Options
{
    std::string traceOut;          //!< Chrome trace-event JSON path
    std::string statsJson;         //!< stats JSON path
    std::string statsCsv;          //!< stats CSV path
    uint64_t timelineInterval = 0; //!< counter sampling period (cycles)
    bool fresh = false;            //!< bypass the run cache
    std::vector<std::string> apps; //!< runSuite() filter (empty = all)
    unsigned jobs = 0;             //!< --jobs value (0 = unset/env/serial)
    int simThreads = -1;           //!< --sim-threads (-1 = unset/env/serial)
    uint64_t maxCycles = 0;        //!< per-run cycle budget (0 = default)
    std::string machine;           //!< --machine spec (name or path)
    std::string simConfig;         //!< key=value config overrides
    std::string faultPlan;         //!< guard::FaultPlan spec
    bool crit = false;             //!< enable the criticality profiler
    unsigned critTopN = 10;        //!< critical-load table depth
    std::string critOut;           //!< crit report path (implies crit)
};

/**
 * Parse the shared observability flags; call first thing in main().
 * Unknown flags are fatal; `--help` prints usage and exits. Artifact
 * files (trace/stats) are finalized automatically at process exit.
 */
void initBench(int argc, char **argv);

/** The options parsed by initBench() (defaults before it runs). */
const Options &options();

/** Run (or load) one application under @p config. */
AppResult runApp(const std::string &name, const sim::GpuConfig &config);

/**
 * Run (or load) the full Table I suite; results are always in Table I
 * order. With an effective job count > 1 the uncached applications are
 * simulated concurrently (one SimContext per job on a gcl::exec pool);
 * stats, cache entries, records and traces are identical to a serial run.
 */
std::vector<AppResult> runSuite(const sim::GpuConfig &config);

/** The job count runSuite() will use: --jobs, else GCL_BENCH_JOBS, else 1. */
unsigned effectiveJobs();

/**
 * The per-simulation tick-thread count every run gets: --sim-threads, else
 * GCL_SIM_THREADS, else 1. A request of 0 ("auto") was already resolved by
 * initBench() to hardware threads minus the sweep's job count, clamped to
 * at least 1 (with a warning when the clamp engages).
 */
unsigned effectiveSimThreads();

/**
 * The base configuration every bench starts from: the machine resolved by
 * --machine / GCL_MACHINE, or the compiled-in C2050 defaults when neither
 * is set. --sim-config overrides layer on top per run (appConfig).
 */
sim::GpuConfig defaultConfig();

/** Print the standard bench header (config fingerprint + cache status). */
void printHeader(const std::string &title, const sim::GpuConfig &config);

/**
 * End-of-main hook: print a summary of failed runs and return the process
 * exit code (0 = all clean, 3 = at least one run produced a failure
 * record). Every bench main ends with `return bench::finishBench();` so a
 * sweep degrades gracefully — failed runs are reported, not fatal.
 */
int finishBench();

} // namespace gcl::bench

#endif // GCL_BENCH_COMMON_RUNNER_HH
