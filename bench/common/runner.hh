/**
 * @file
 * Shared experiment runner for the figure/table benches.
 *
 * Every bench binary regenerates its figure from the same 15-application
 * simulation sweep. Since one sweep costs the better part of a minute, the
 * runner memoizes finished runs on disk keyed by (application, dataset
 * version, config fingerprint); `for b in build/bench/*; do $b; done`
 * therefore simulates each configuration once and replays it everywhere
 * else. Set GCL_BENCH_FRESH=1 to ignore the cache, GCL_BENCH_CACHE to move
 * it (default: ./bench_results).
 */

#ifndef GCL_BENCH_COMMON_RUNNER_HH
#define GCL_BENCH_COMMON_RUNNER_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "util/stats.hh"

namespace gcl::bench
{

/** One finished application run. */
struct AppResult
{
    std::string name;
    std::string category;    //!< "linear" / "image" / "graph"
    bool verified = false;   //!< CPU reference check passed
    StatsSet stats;          //!< finalized simulator stats
};

/** Run (or load) one application under @p config. */
AppResult runApp(const std::string &name, const sim::GpuConfig &config);

/** Run (or load) the full Table I suite in order. */
std::vector<AppResult> runSuite(const sim::GpuConfig &config);

/** Default Table II configuration. */
sim::GpuConfig defaultConfig();

/** Print the standard bench header (config fingerprint + cache status). */
void printHeader(const std::string &title, const sim::GpuConfig &config);

} // namespace gcl::bench

#endif // GCL_BENCH_COMMON_RUNNER_HH
