/**
 * @file
 * Table II reproduction: the simulated device configuration (GPGPU-Sim
 * v3.2.2, Tesla C2050-class defaults). Renders whatever machine
 * description --machine / GCL_MACHINE resolved — the compiled-in C2050
 * when unset — so it doubles as a quick "what am I simulating" check for
 * the configs/ zoo.
 */

#include <cstdio>

#include "common/runner.hh"

int
main(int argc, char **argv)
{
    gcl::bench::initBench(argc, argv);
    const auto config = gcl::bench::defaultConfig();
    gcl::bench::printHeader("Table II: experiment environment", config);
    std::printf("%s", config.describe().c_str());
    std::printf("\nAnalytic unloaded latencies: L1 hit %u, L2 hit %u, "
                "DRAM %u cycles\n",
                config.l1HitLatency, config.unloadedL2Latency(),
                config.unloadedDramLatency());
    return gcl::bench::finishBench();
}
