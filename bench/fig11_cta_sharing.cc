/**
 * @file
 * Figure 11 reproduction: inter-CTA data sharing — the fraction of 128B
 * blocks touched by two or more CTAs, the fraction of accesses landing on
 * such shared blocks, and the average number of CTAs sharing a block.
 *
 * Paper shape: ~29% of blocks are shared but they absorb ~51% of all
 * accesses, and (outside the image apps) shared blocks are used by dozens
 * of CTAs — locality exists, the private L1s just cannot exploit it.
 */

#include <iostream>

#include "common/runner.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace gcl;
    bench::initBench(argc, argv);
    const auto config = bench::defaultConfig();
    bench::printHeader("Figure 11: data blocks shared across CTAs", config);

    Table table({"app", "shared block ratio", "shared access ratio",
                 "avg CTAs/shared block"});
    double block_ratio_sum = 0.0, access_ratio_sum = 0.0;
    for (const auto &app : bench::runSuite(config)) {
        const auto &s = app.stats;
        const double block_ratio = s.ratio("blocks.shared", "blocks.count");
        const double access_ratio =
            s.ratio("blocks.shared_accesses", "blocks.accesses");
        block_ratio_sum += block_ratio;
        access_ratio_sum += access_ratio;
        table.addRow({
            app.name,
            Table::fmtPct(block_ratio),
            Table::fmtPct(access_ratio),
            Table::fmt(s.ratio("blocks.shared_cta_sum", "blocks.shared"),
                       1),
        });
    }
    table.print(std::cout);
    std::cout << "\naverages: shared blocks "
              << Table::fmtPct(block_ratio_sum / 15)
              << ", accesses to shared blocks "
              << Table::fmtPct(access_ratio_sum / 15)
              << " (paper: 28.7% / 50.9%)\n\nCSV:\n";
    table.printCsv(std::cout);
    return bench::finishBench();
}
